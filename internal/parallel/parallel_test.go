package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		got := Map(100, workers, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// A float-heavy job: accumulation order inside fn is fixed, so every
	// worker count must reproduce the serial bits exactly.
	job := func(i int) float64 {
		s := 0.0
		for k := 1; k <= 1000; k++ {
			s += 1.0 / float64(i*1000+k)
		}
		return s
	}
	serial := Map(64, 1, job)
	for _, workers := range []int{2, 4, 8} {
		if got := Map(64, workers, job); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: results differ from serial", workers)
		}
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
	// workers <= 0 → default pool; still ordered and complete.
	got := Map(10, 0, func(i int) int { return i })
	for i, v := range got {
		if v != i {
			t.Fatalf("default-workers out[%d] = %d", i, v)
		}
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestMapErrLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4, 8} {
		out, err := MapErr(50, workers, func(i int) (int, error) {
			if i == 17 || i == 31 {
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		})
		if out != nil {
			t.Errorf("workers=%d: partial results leaked", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// Deterministic choice: the lowest failing index, regardless of
		// which goroutine finished first.
		if !strings.Contains(err.Error(), "job 17") {
			t.Errorf("workers=%d: err = %v, want job 17", workers, err)
		}
	}
}

func TestMapErrStopsIssuingAfterFailure(t *testing.T) {
	// After the failure at index 0 is observed, workers must stop claiming
	// new indices. With 2 workers and a failure at the very first index,
	// far fewer than all 10k jobs should run.
	var ran atomic.Int64
	_, err := MapErr(10000, 2, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n > 5000 {
		t.Errorf("%d jobs ran after an index-0 failure — cancellation not working", n)
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr(20, 4, func(i int) (string, error) {
		return fmt.Sprintf("r%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				// Lowest panicking index wins deterministically.
				if pe.Index != 7 {
					t.Errorf("workers=%d: panic index %d, want 7", workers, pe.Index)
				}
				if pe.Value != "kaboom" {
					t.Errorf("workers=%d: panic value %v", workers, pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: no stack captured", workers)
				}
				if !strings.Contains(pe.Error(), "job 7") {
					t.Errorf("workers=%d: message %q", workers, pe.Error())
				}
			}()
			Map(40, workers, func(i int) int {
				if i == 7 || i == 23 {
					panic("kaboom")
				}
				return i
			})
		}()
	}
}

func TestPanicBeatsHigherIndexError(t *testing.T) {
	// A panic at index 3 outranks an error at index 9: lowest failing
	// index wins whatever its kind.
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok || pe.Index != 3 {
			t.Fatalf("recovered %v, want *PanicError at index 3", r)
		}
	}()
	_, _ = MapErr(20, 4, func(i int) (int, error) {
		if i == 3 {
			panic("low")
		}
		if i == 9 {
			return 0, errors.New("high")
		}
		return i, nil
	})
	t.Fatal("no panic propagated")
}

func TestMapErrWorkersClampedToJobs(t *testing.T) {
	// More workers than jobs must not deadlock or duplicate work.
	var ran atomic.Int64
	out, err := MapErr(3, 64, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil || len(out) != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if ran.Load() != 3 {
		t.Errorf("ran %d jobs, want 3", ran.Load())
	}
}

func TestMapCtxMatchesMapErr(t *testing.T) {
	job := func(_ context.Context, i int) (int, error) { return i * 3, nil }
	want, err := MapErr(50, 4, func(i int) (int, error) { return i * 3, nil })
	if err != nil {
		t.Fatalf("MapErr: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := MapCtx(context.Background(), 50, workers, job)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from MapErr", workers)
		}
	}
	// nil ctx is treated as Background.
	if _, err := MapCtx(nil, 10, 2, job); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
}

func TestMapCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		got, err := MapCtx(ctx, 100, workers, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got != nil {
			t.Errorf("workers=%d: partial results returned", workers)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d jobs ran under a pre-canceled ctx", workers, ran.Load())
		}
	}
}

func TestMapCtxCancelStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapCtx(ctx, 10_000, 4, func(_ context.Context, i int) (int, error) {
		if ran.Add(1) == 8 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight jobs drain, but nothing close to the full set runs.
	if n := ran.Load(); n >= 10_000 {
		t.Errorf("cancellation did not stop index claiming: %d jobs ran", n)
	}
}

func TestMapCtxJobErrorBeatsCancellation(t *testing.T) {
	sentinel := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 100, 4, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the job error to win over ctx.Err()", err)
	}
	if !strings.Contains(err.Error(), "parallel: job 3") {
		t.Errorf("err = %v, want lowest-failing-index wrapping", err)
	}
}
