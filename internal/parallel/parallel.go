// Package parallel is the experiment engine's deterministic fan-out
// primitive. The evaluation's hot paths are embarrassingly parallel —
// 500 independent trace simulations (§5.4), 500 independent seeded trace
// generations, the multi-program motion sweeps of Fig 13/15 — and Map /
// MapErr run such indexed job sets on a fixed-size worker pool while
// keeping the output *bit-identical* to the serial loop.
//
// # Determinism contract
//
// For a pure fn (its result depends only on the index), Map and MapErr
// return the same values for every worker count, including 1:
//
//   - results are written into a preallocated slice at their own index —
//     collection order never depends on scheduling;
//   - reductions (min/max/mean and friends) are the caller's job and must
//     happen after Map returns, over the ordered slice, never inside fn;
//   - MapErr reports the error of the lowest failing index, not the
//     temporally first failure. Indices are claimed in increasing order,
//     so every index below a failing one is guaranteed to have run, making
//     the chosen error independent of goroutine interleaving;
//   - a panicking job does not tear down the process from a worker
//     goroutine: the panic is captured with its worker stack and re-raised
//     in the calling goroutine (again lowest-index-wins) once all in-flight
//     jobs have drained.
//
// Workers ≤ 0 means "use the process default" (SetDefaultWorkers, falling
// back to GOMAXPROCS); workers == 1 runs inline on the calling goroutine
// with no pool at all — the serial reference path.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cyclops/internal/obs"
)

// defaultWorkers is the process-wide fan-out width used when a call site
// passes workers <= 0. Zero means runtime.GOMAXPROCS(0).
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used by
// Map/MapErr when a call site passes workers <= 0. n <= 0 restores the
// GOMAXPROCS default. The cyclops-bench -parallel flag routes here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the effective default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered from a worker goroutine. Map/MapErr
// re-panic with *PanicError in the calling goroutine so a crashing job
// behaves like a crashing serial loop, but with the job index and the
// worker's stack attached.
type PanicError struct {
	// Index is the job index whose fn panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Map applies fn to every index in [0, n) on a pool of the given size and
// returns the results in index order. workers <= 0 uses DefaultWorkers();
// the output is identical for any worker count. A panic in fn is re-raised
// in the caller as a *PanicError.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out, err := MapErr(n, workers, func(i int) (T, error) {
		return fn(i), nil
	})
	if err != nil {
		// Unreachable: the wrapped fn never returns an error and panics
		// are re-raised inside MapErr.
		//cyclops:panic-ok unreachable: the wrapped fn never errors and worker panics re-raise inside MapErr
		panic(err)
	}
	return out
}

// MapObs is Map for instrumented jobs: every job records metrics into its
// own private obs.Registry, and after the fan-out completes the per-job
// snapshots are reduced serially, in job-index order, into one merged
// Snapshot. That keeps the determinism contract intact for observability
// too — the merged snapshot (and its text exposition) is byte-identical
// for any worker count, because no instrument is ever shared between jobs
// and the reduction order never depends on scheduling.
func MapObs[T any](n, workers int, fn func(i int, reg *obs.Registry) T) ([]T, obs.Snapshot) {
	type job struct {
		v    T
		snap obs.Snapshot
	}
	outs := Map(n, workers, func(i int) job {
		reg := obs.NewRegistry()
		return job{v: fn(i, reg), snap: reg.Snapshot()}
	})
	vals := make([]T, n)
	snaps := make([]obs.Snapshot, n)
	for i, o := range outs {
		vals[i] = o.v
		snaps[i] = o.snap
	}
	return vals, obs.MergeAll(snaps)
}

// MapErr is Map for fallible jobs: it applies fn to every index in [0, n)
// and returns the ordered results, or the error of the lowest failing
// index. Once any job fails, no further indices are started (the in-flight
// ones drain), and the partial results are discarded — callers never see a
// half-filled slice. A panic in fn is re-raised in the caller as a
// *PanicError.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is MapErr with cooperative cancellation: no new index is claimed
// once ctx is done (in-flight jobs drain), and fn receives ctx so
// long-running jobs can stop early themselves. The determinism contract is
// unchanged — with a ctx that never cancels, MapCtx returns exactly what
// MapErr would for every worker count. On early stop the partial results
// are discarded and the error precedence is: a job panic (re-raised),
// then the lowest failing job index, then ctx.Err() verbatim (so callers
// can match context.Canceled / DeadlineExceeded with errors.Is).
func MapCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)

	if workers == 1 {
		// Serial reference path: inline on the calling goroutine.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, fmt.Errorf("parallel: job %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next       atomic.Int64 // next index to claim
		failed     atomic.Bool  // stop claiming once any job fails
		mu         sync.Mutex   // guards firstIdx/firstErr/firstPanic
		firstIdx   = n          // lowest failing index seen so far
		firstErr   error
		firstPanic *PanicError
	)
	record := func(i int, err error, pv *PanicError) {
		failed.Store(true)
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr, firstPanic = i, err, pv
		}
		mu.Unlock()
	}
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				record(i, nil, &PanicError{Index: i, Value: r, Stack: buf})
			}
		}()
		v, err := fn(ctx, i)
		if err != nil {
			record(i, err, nil)
			return
		}
		out[i] = v
	}

	done := ctx.Done()
	stopped := func() bool {
		if failed.Load() {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stopped() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()

	if firstPanic != nil {
		//cyclops:panic-ok re-raises the first worker panic on the caller's goroutine, preserving panic semantics across the fan-out
		panic(firstPanic)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("parallel: job %d: %w", firstIdx, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
