// Package arena scales the single-headset evaluation to a venue: N users
// under a ceiling grid of FSO transmitters, each user's beam threatened by
// the bodies and raised arms of the people around them, every served
// stream contending for a shared backhaul. It answers the deployment
// question the paper's §6 leaves open — how many headsets can one ceiling
// TX serve at a given crowd density before occlusion availability or
// backhaul share collapses.
//
// The package is a pure function of its Options: user placement, body
// sway, occlusion geometry, and the per-user slot simulation all derive
// from the seed. The venue is processed one ceiling cell at a time
// (streamed, like sim.RunCorpus): cell membership is integer arithmetic
// on the user index, so a cell's work needs only its own and adjacent
// cells' users — live heap is O(users-per-cell · slots), independent of
// venue size, and a run checkpoints and resumes by cell.
package arena

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"cyclops/internal/fault"
	"cyclops/internal/geom"
	"cyclops/internal/handover"
	"cyclops/internal/link"
	"cyclops/internal/netem"
	"cyclops/internal/obs"
	"cyclops/internal/optics"
	"cyclops/internal/parallel"
	"cyclops/internal/sim"
	"cyclops/internal/trace"
)

// Physical constants of the crowd model. Torso and arm are the two
// occluder spheres each neighboring user contributes (handover.Occluder
// semantics: an opaque sphere swept along a path); sway is the slow
// shuffle of a standing spectator around their home spot.
const (
	// HeadHeight is the headset optical bench height (matches
	// link.DefaultHeadsetPose's 1.0 m Trans.Z — the RX the beam must
	// reach).
	HeadHeight = 1.0
	// TorsoHeight and ArmHeight are the occluder sphere centers; both
	// sit above the headset plane, squarely in the TX→RX path of a
	// neighbor standing close enough.
	TorsoHeight = 1.45
	ArmHeight   = 1.75
	// OccluderRadius is the sphere radius for both torso and raised arm
	// (a 0.6 m-wide obstruction, the paper's hand/body blockage scale).
	OccluderRadius = 0.30
	// SwayAmplitude bounds the occluder's wander around its home spot.
	SwayAmplitude = 0.40
	// NeighborRadius is how close another user's home spot must be to
	// threaten the beam; MaxNeighbors caps the occluder set per user.
	NeighborRadius = 1.5
	MaxNeighbors   = 6
	// OcclusionStep is the geometric sampling cadence for beam/occluder
	// intersection (the 50 ms netem window — body motion is slow).
	OcclusionStep = 50 * time.Millisecond
	// BodyDepthDB is the plateau attenuation of a body occlusion — far
	// past any link budget (a torso is opaque at 1550 nm).
	BodyDepthDB = 40
	// BodyRamp is the occlusion edge time (limb speed across a 2 cm
	// beam).
	BodyRamp = 10 * time.Millisecond
)

// Options configures an arena run. The zero value of every field except
// Users and Density has a working default installed by Validate.
type Options struct {
	// Seed drives all hidden variation: placement jitter, sway phases,
	// per-user motion traces, rescue draws.
	Seed int64
	// Users is the number of headsets in the venue.
	Users int
	// Density is the crowd density in users per square meter; the venue
	// is the square of area Users/Density, its ceiling gridded at Pitch.
	Density float64
	// UsersPerTX caps how many headsets one ceiling TX serves. Users
	// beyond the cap (ranked by distance to their cell's TX) are
	// unserved — they keep occluding their neighbors but get no link.
	UsersPerTX int
	// TraceLen is the per-user session length (default one minute).
	TraceLen time.Duration
	// Pitch is the ceiling TX grid spacing in meters (default 2.0, the
	// fig16-handover wide-ring regime).
	Pitch float64
	// BackhaulGbps is the venue's shared backhaul capacity; each cell
	// owns an equal static share, and the cell's momentarily-connected
	// users split that share per slot (default 100 Gbps).
	BackhaulGbps float64
	// LinkGoodputGbps is the per-link TCP goodput ceiling (default the
	// 25G part's 23.5).
	LinkGoodputGbps float64
	// Params is the base slot-model parameterization. TXCount,
	// StandbyBlockProb and HandoverDark are derived per cell from the
	// ceiling geometry when left zero.
	Params sim.ChaosParams
	// Workers bounds the cell-level fan-out (0 = parallel default).
	Workers int
	// Context cancels a run between cell batches.
	Context context.Context
	// Registry receives the merged metrics of a completed run (nil =
	// obs.Default()).
	Registry *obs.Registry
	// Resume continues a previous run from its returned Checkpoint.
	Resume Checkpoint
	// MaxCells bounds how many cells this call processes (0 = all
	// remaining) — the checkpointing window.
	MaxCells int
}

// Validate fills defaults and rejects impossible configurations.
func (o *Options) Validate() error {
	if o.Users <= 0 {
		return errors.New("arena: Users must be positive")
	}
	if o.Density <= 0 {
		return errors.New("arena: Density must be positive")
	}
	if o.UsersPerTX < 0 {
		return errors.New("arena: negative UsersPerTX")
	}
	if o.MaxCells < 0 {
		return errors.New("arena: negative MaxCells")
	}
	if o.Resume.NextCell < 0 {
		return errors.New("arena: negative Resume.NextCell")
	}
	if o.UsersPerTX == 0 {
		o.UsersPerTX = 4
	}
	if o.TraceLen <= 0 {
		o.TraceLen = time.Minute
	}
	if o.Pitch <= 0 {
		o.Pitch = 2.0
	}
	if o.BackhaulGbps <= 0 {
		o.BackhaulGbps = 100
	}
	if o.LinkGoodputGbps <= 0 {
		o.LinkGoodputGbps = optics.SFP28LR.OptimalGoodputGbps
	}
	if o.Params == (sim.ChaosParams{}) {
		o.Params = sim.PaperChaos25G()
	}
	if o.Params.AvailabilityParams == (sim.AvailabilityParams{}) {
		o.Params.AvailabilityParams = sim.Paper25G()
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	return nil
}

// Layout is the deterministic venue geometry: a square floor under an
// NX×NY ceiling grid. Users are assigned to cells by pure index
// arithmetic, so any cell's membership — and its neighbors' — is O(1) to
// compute without materializing the crowd.
type Layout struct {
	Seed   int64
	Users  int
	W, D   float64 // venue extent, meters (centered on the origin)
	NX, NY int     // ceiling grid
	CellW  float64
	CellD  float64
	Pitch  float64
}

// NewLayout grids the ceiling of the square venue holding users at
// density, at the given TX pitch.
func NewLayout(seed int64, users int, density, pitch float64) Layout {
	w := math.Sqrt(float64(users) / density)
	n := int(math.Round(w / pitch))
	if n < 1 {
		n = 1
	}
	return Layout{
		Seed: seed, Users: users,
		W: w, D: w,
		NX: n, NY: n,
		CellW: w / float64(n), CellD: w / float64(n),
		Pitch: pitch,
	}
}

// Cells returns the ceiling TX count.
func (l Layout) Cells() int { return l.NX * l.NY }

// CellOf maps a user index to its ceiling cell: contiguous index ranges,
// one per cell, balanced to within one user.
func (l Layout) CellOf(user int) int {
	return user * l.Cells() / l.Users
}

// CellUsers returns the half-open user index range [lo, hi) of cell c —
// the inverse of CellOf.
func (l Layout) CellUsers(c int) (lo, hi int) {
	n := l.Cells()
	return ceilDiv(c*l.Users, n), ceilDiv((c+1)*l.Users, n)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TXPos returns cell c's ceiling transmitter position.
func (l Layout) TXPos(c int) geom.Vec3 {
	cx, cy := c%l.NX, c/l.NX
	return geom.V(
		(float64(cx)+0.5)*l.CellW-l.W/2,
		(float64(cy)+0.5)*l.CellD-l.D/2,
		link.CeilingHeight,
	)
}

// Standbys returns how many orthogonally adjacent ceiling TXs can rescue
// an occluded beam in cell c (the make-before-break pool).
func (l Layout) Standbys(c int) int {
	cx, cy := c%l.NX, c/l.NX
	n := 0
	if cx > 0 {
		n++
	}
	if cx < l.NX-1 {
		n++
	}
	if cy > 0 {
		n++
	}
	if cy < l.NY-1 {
		n++
	}
	return n
}

// Home returns user i's floor-level home position: a seeded jitter inside
// its cell (80% of the cell extent, keeping homes off the cell edges).
func (l Layout) Home(i int) geom.Vec3 {
	c := l.CellOf(i)
	center := l.TXPos(c)
	return geom.V(
		center.X+(hashUnit(l.Seed, i, 1)-0.5)*0.8*l.CellW,
		center.Y+(hashUnit(l.Seed, i, 2)-0.5)*0.8*l.CellD,
		0,
	)
}

// Occluder builds the two opaque spheres user i's body presents to
// neighboring beams: torso and raised arm, both swaying around the home
// spot with a seeded phase and period.
func (l Layout) Occluder(i int) [2]handover.Occluder {
	home := l.Home(i)
	amp := SwayAmplitude * (0.5 + 0.5*hashUnit(l.Seed, i, 3))
	phase := 2 * math.Pi * hashUnit(l.Seed, i, 4)
	period := 3 + 3*hashUnit(l.Seed, i, 5) // 3–6 s shuffle
	sway := func(t time.Duration) (float64, float64) {
		th := 2*math.Pi*t.Seconds()/period + phase
		return amp * math.Sin(th), amp * math.Cos(th)
	}
	path := func(z float64) func(t time.Duration) geom.Vec3 {
		return func(t time.Duration) geom.Vec3 {
			dx, dy := sway(t)
			return geom.V(home.X+dx, home.Y+dy, z)
		}
	}
	return [2]handover.Occluder{
		{Radius: OccluderRadius, Path: path(TorsoHeight)},
		{Radius: OccluderRadius, Path: path(ArmHeight)},
	}
}

// Neighbors returns the occluding users around user i: everyone whose
// home spot lies within NeighborRadius, nearest first (ties by index),
// capped at MaxNeighbors. Only the 3×3 cell neighborhood is scanned —
// NeighborRadius never exceeds a cell diagonal at the supported pitches.
func (l Layout) Neighbors(i int) []int {
	home := l.Home(i)
	c := l.CellOf(i)
	cx, cy := c%l.NX, c/l.NX
	type cand struct {
		idx  int
		dist float64
	}
	var cands []cand
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || nx >= l.NX || ny < 0 || ny >= l.NY {
				continue
			}
			lo, hi := l.CellUsers(ny*l.NX + nx)
			for j := lo; j < hi; j++ {
				if j == i {
					continue
				}
				if d := l.Home(j).Dist(home); d <= NeighborRadius {
					cands = append(cands, cand{j, d})
				}
			}
		}
	}
	// Selection sort by (dist, index): the candidate set is tiny and the
	// order must be reproducible.
	for a := 0; a < len(cands); a++ {
		best := a
		for b := a + 1; b < len(cands); b++ {
			if cands[b].dist < cands[best].dist ||
				(cands[b].dist == cands[best].dist && cands[b].idx < cands[best].idx) {
				best = b
			}
		}
		cands[a], cands[best] = cands[best], cands[a]
	}
	if len(cands) > MaxNeighbors {
		cands = cands[:MaxNeighbors]
	}
	out := make([]int, len(cands))
	for k, c := range cands {
		out[k] = c.idx
	}
	return out
}

// Trace returns user i's head-motion trace, seeded per user and anchored
// at the home spot at headset height.
func (l Layout) Trace(i int, length time.Duration) trace.Trace {
	home := l.Home(i)
	return trace.Generate(l.Seed, i, length, geom.V(home.X, home.Y, HeadHeight))
}

// hashUnit maps (seed, index, salt) to a uniform float64 in [0, 1) with a
// splitmix64 finalizer — placement and sway randomness without any rand
// state.
func hashUnit(seed int64, i, salt int) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + uint64(salt)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// OcclusionWindows traces the TX→head beam against the occluder set and
// returns the blocked intervals as fault windows. The beam is sampled
// every OcclusionStep; consecutive blocked samples merge into one window.
func OcclusionWindows(tx geom.Vec3, tr trace.Trace, occs []handover.Occluder) []fault.Window {
	var wins []fault.Window
	dur := tr.Duration()
	blockedFrom := time.Duration(-1)
	flush := func(end time.Duration) {
		if blockedFrom >= 0 {
			wins = append(wins, fault.Window{
				Kind:    fault.Occlusion,
				Start:   blockedFrom,
				End:     end,
				DepthDB: BodyDepthDB,
				Ramp:    BodyRamp,
			})
			blockedFrom = -1
		}
	}
	for t := time.Duration(0); t <= dur; t += OcclusionStep {
		seg := geom.Segment{A: tx, B: tr.PoseAt(t).Trans}
		blocked := false
		for _, oc := range occs {
			if seg.DistanceTo(oc.Path(t)) < oc.Radius {
				blocked = true
				break
			}
		}
		if blocked {
			if blockedFrom < 0 {
				blockedFrom = t
			}
		} else {
			flush(t)
		}
	}
	flush(dur + OcclusionStep)
	return wins
}

// Metrics is the arena's observability surface (one registration site,
// per the repo's metrics rule).
type Metrics struct {
	Users    *obs.Counter
	Unserved *obs.Counter
	Cells    *obs.Counter
	Goodput  *obs.Histogram
}

// GoodputBuckets spans the contended-share range up to the 25G optimum.
var GoodputBuckets = []float64{0.5, 1, 2, 4, 8, 12, 16, 20, 23.5}

// NewMetrics registers the arena instruments in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Users: reg.Counter("cyclops_arena_users_total",
			"Headsets simulated across arena runs."),
		Unserved: reg.Counter("cyclops_arena_unserved_users_total",
			"Headsets left without a TX by the UsersPerTX cap."),
		Cells: reg.Counter("cyclops_arena_cells_total",
			"Ceiling cells processed across arena runs."),
		Goodput: reg.Histogram("cyclops_arena_user_goodput_gbps",
			"Per-served-user mean TCP goodput under backhaul contention.",
			GoodputBuckets),
	}
}

// Aggregate is the order-insensitive summary an arena run accumulates
// cell by cell.
type Aggregate struct {
	Cells    int
	Users    int
	Served   int
	Unserved int

	Slots        int
	OffSlots     int
	BlockedSlots int
	Outages      int
	Handovers    int

	// Avail99 and Avail999 count served users whose occlusion-layer
	// availability (1 − BlockedSlots/Slots, the fig16-handover
	// ChaosAvailability) meets two and three nines.
	Avail99  int
	Avail999 int
	// MinAvailability is the worst served user's occlusion availability.
	MinAvailability float64
	// GoodputSumGbps totals served users' mean goodput (under backhaul
	// contention); MinGoodputGbps is the worst of them.
	GoodputSumGbps float64
	MinGoodputGbps float64

	// Metrics folds every cell's registry snapshot in cell order.
	Metrics obs.Snapshot
}

func (a *Aggregate) addServed(avail, goodput float64) {
	if a.Served == 0 || avail < a.MinAvailability {
		a.MinAvailability = avail
	}
	if a.Served == 0 || goodput < a.MinGoodputGbps {
		a.MinGoodputGbps = goodput
	}
	a.Served++
	a.GoodputSumGbps += goodput
	if avail >= 0.99 {
		a.Avail99++
	}
	if avail >= 0.999 {
		a.Avail999++
	}
}

func (a *Aggregate) merge(o Aggregate) {
	if o.Cells == 0 {
		return
	}
	if a.Served == 0 {
		a.MinAvailability = o.MinAvailability
		a.MinGoodputGbps = o.MinGoodputGbps
	} else if o.Served > 0 {
		if o.MinAvailability < a.MinAvailability {
			a.MinAvailability = o.MinAvailability
		}
		if o.MinGoodputGbps < a.MinGoodputGbps {
			a.MinGoodputGbps = o.MinGoodputGbps
		}
	}
	a.Cells += o.Cells
	a.Users += o.Users
	a.Served += o.Served
	a.Unserved += o.Unserved
	a.Slots += o.Slots
	a.OffSlots += o.OffSlots
	a.BlockedSlots += o.BlockedSlots
	a.Outages += o.Outages
	a.Handovers += o.Handovers
	a.Avail99 += o.Avail99
	a.Avail999 += o.Avail999
	a.GoodputSumGbps += o.GoodputSumGbps
	a.Metrics = a.Metrics.Merge(o.Metrics)
}

// MeanAvailability is the venue-wide occlusion-layer availability.
func (a Aggregate) MeanAvailability() float64 {
	if a.Slots == 0 {
		return 0
	}
	return 1 - float64(a.BlockedSlots)/float64(a.Slots)
}

// MeanGoodputGbps is the served users' mean contended goodput.
func (a Aggregate) MeanGoodputGbps() float64 {
	if a.Served == 0 {
		return 0
	}
	return a.GoodputSumGbps / float64(a.Served)
}

// Checkpoint is a resumable position in an arena run.
type Checkpoint struct {
	// NextCell is the first unprocessed ceiling cell.
	NextCell int
	// Done marks a completed venue.
	Done bool
	// Agg carries the aggregate over everything processed so far.
	Agg Aggregate
}

// Result is a (possibly partial) arena run outcome.
type Result struct {
	Aggregate
	Layout     Layout
	Checkpoint Checkpoint
}

// Run executes (or continues) an arena simulation. Identical Options —
// any Workers value included — return the identical Result bit for bit:
// cells are folded in cell order regardless of completion order.
func Run(opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	l := NewLayout(opts.Seed, opts.Users, opts.Density, opts.Pitch)
	nCells := l.Cells()
	start := opts.Resume.NextCell
	agg := opts.Resume.Agg
	if start > nCells {
		start = nCells
	}
	end := nCells
	if opts.MaxCells > 0 && start+opts.MaxCells < end {
		end = start + opts.MaxCells
	}

	finish := func(next int, err error) (Result, error) {
		res := Result{Aggregate: agg, Layout: l}
		res.Checkpoint = Checkpoint{NextCell: next, Done: next == nCells, Agg: agg}
		if err == nil && res.Checkpoint.Done && opts.Registry != nil {
			opts.Registry.Merge(agg.Metrics)
		}
		return res, err
	}

	batch := parallel.DefaultWorkers() * 2
	if opts.Workers > 0 {
		batch = opts.Workers * 2
	}
	if batch < 8 {
		batch = 8
	}
	for lo := start; lo < end; lo += batch {
		hi := lo + batch
		if hi > end {
			hi = end
		}
		outs, err := parallel.MapCtx(opts.Context, hi-lo, opts.Workers,
			func(_ context.Context, k int) (Aggregate, error) {
				return runCell(l, opts, lo+k), nil
			})
		if err != nil {
			return finish(lo, err)
		}
		for _, o := range outs {
			agg.merge(o)
		}
	}
	return finish(end, nil)
}

// runCell simulates one ceiling cell: schedule its users against the TX,
// derive each served user's occlusion windows from the surrounding
// bodies, run the chaos slot model, then share the cell's backhaul slice
// among the momentarily-connected users.
func runCell(l Layout, opts Options, c int) Aggregate {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	sm := netem.NewStreamMetrics(reg)
	var agg Aggregate
	agg.Cells = 1
	m.Cells.Inc()

	lo, hi := l.CellUsers(c)
	agg.Users = hi - lo
	tx := l.TXPos(c)

	// Rank the cell's users by distance to the TX (ties by index) and
	// serve the closest UsersPerTX; the rest stay in the crowd as
	// occluders only.
	order := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		order = append(order, i)
	}
	for a := 0; a < len(order); a++ {
		best := a
		for b := a + 1; b < len(order); b++ {
			da := l.Home(order[best]).Dist(geom.V(tx.X, tx.Y, 0))
			db := l.Home(order[b]).Dist(geom.V(tx.X, tx.Y, 0))
			if db < da || (db == da && order[b] < order[best]) {
				best = b
			}
		}
		order[a], order[best] = order[best], order[a]
	}
	served := order
	if len(served) > opts.UsersPerTX {
		served = served[:opts.UsersPerTX]
	}
	for range order[len(served):] {
		m.Unserved.Inc()
		agg.Unserved++
	}
	m.Users.Add(float64(hi - lo))

	p := opts.Params
	if p.TXCount == 0 {
		p.TXCount = 1 + l.Standbys(c)
	}
	if p.TXCount > 1 && p.HandoverDark == 0 {
		p.HandoverDark = 2 * time.Millisecond
	}
	if p.TXCount > 1 && p.StandbyBlockProb == 0 {
		p.StandbyBlockProb = sim.StandbyBlockProbForSpacing(l.Pitch)
	}

	// Pass 1: slot model per served user, collecting per-slot link
	// verdicts for the contention pass.
	type userRun struct {
		res sim.ChaosTraceResult
		off []bool
	}
	runs := make([]userRun, len(served))
	for k, i := range served {
		tr := l.Trace(i, opts.TraceLen)
		var occs []handover.Occluder
		for _, j := range l.Neighbors(i) {
			pair := l.Occluder(j)
			occs = append(occs, pair[0], pair[1])
		}
		sched := fault.Schedule{
			Seed:    opts.Seed + 7919*int64(i),
			Windows: OcclusionWindows(tx, tr, occs),
		}
		run := userRun{}
		run.res = sim.SimulateTraceChaosSlots(tr, p, &sched, reg, func(slot int, off bool) {
			run.off = append(run.off, off)
		})
		runs[k] = run
		agg.Slots += run.res.Slots
		agg.OffSlots += run.res.OffSlots
		agg.BlockedSlots += run.res.BlockedSlots
		agg.Outages += run.res.Outages
		agg.Handovers += run.res.Handovers
	}

	// Pass 2: per-slot backhaul contention. The cell owns an equal share
	// of the venue backhaul; each slot splits it across the users whose
	// links are up, capped by the per-link goodput ceiling.
	cellShare := opts.BackhaulGbps / float64(l.Cells())
	maxSlots := 0
	for _, r := range runs {
		if len(r.off) > maxSlots {
			maxSlots = len(r.off)
		}
	}
	up := make([]int, maxSlots)
	for _, r := range runs {
		for s, off := range r.off {
			if !off {
				up[s]++
			}
		}
	}
	slotLen := p.Slot
	for _, r := range runs {
		st := netem.NewStream()
		st.Metrics = sm
		for s, off := range r.off {
			rate := opts.LinkGoodputGbps
			if up[s] > 0 {
				if share := cellShare / float64(up[s]); share < rate {
					rate = share
				}
			}
			st.Tick(time.Duration(s)*slotLen, slotLen, !off, rate)
		}
		st.Finish()
		goodput := st.MeanGbps()
		avail := 1.0
		if r.res.Slots > 0 {
			avail = 1 - float64(r.res.BlockedSlots)/float64(r.res.Slots)
		}
		m.Goodput.Observe(goodput)
		agg.addServed(avail, goodput)
	}

	agg.Metrics = reg.Snapshot()
	return agg
}

// String renders a one-line capacity summary (the smoke target greps it).
func (r Result) String() string {
	return fmt.Sprintf(
		"arena: %d users / %d cells, served %d (unserved %d), avail mean %.4f%% min %.4f%%, ≥99%%: %d, ≥99.9%%: %d, goodput mean %.2f Gbps min %.2f",
		r.Users, r.Cells, r.Served, r.Unserved,
		r.MeanAvailability()*100, r.MinAvailability*100,
		r.Avail99, r.Avail999,
		r.MeanGoodputGbps(), r.MinGoodputGbps)
}
