package arena

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cyclops/internal/handover"
	"cyclops/internal/obs"
)

// testOpts is a small but non-degenerate venue: 32 users over 16 cells,
// short traces, hermetic registry.
func testOpts(workers int) Options {
	return Options{
		Seed:     7,
		Users:    32,
		Density:  0.5,
		TraceLen: 10 * time.Second,
		Workers:  workers,
		Registry: obs.NewRegistry(),
	}
}

func TestLayoutPartition(t *testing.T) {
	for _, users := range []int{1, 5, 16, 33, 100} {
		l := NewLayout(3, users, 0.5, 2.0)
		covered := 0
		for c := 0; c < l.Cells(); c++ {
			lo, hi := l.CellUsers(c)
			if hi < lo {
				t.Fatalf("users=%d cell %d: inverted range [%d,%d)", users, c, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if l.CellOf(i) != c {
					t.Fatalf("users=%d: CellOf(%d)=%d but CellUsers(%d) claims it", users, i, l.CellOf(i), c)
				}
			}
			covered += hi - lo
		}
		if covered != users {
			t.Fatalf("users=%d: partition covers %d", users, covered)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	l := NewLayout(3, 32, 0.5, 2.0)
	if l.NX != 4 || l.NY != 4 {
		t.Fatalf("8x8m venue at 2m pitch gridded %dx%d", l.NX, l.NY)
	}
	for i := 0; i < l.Users; i++ {
		h := l.Home(i)
		if h.X < -l.W/2 || h.X > l.W/2 || h.Y < -l.D/2 || h.Y > l.D/2 {
			t.Errorf("user %d home %v outside the venue", i, h)
		}
		c := l.CellOf(i)
		tx := l.TXPos(c)
		if dx := h.X - tx.X; dx < -l.CellW/2 || dx > l.CellW/2 {
			t.Errorf("user %d home %v outside cell %d (tx %v)", i, h, c, tx)
		}
	}
	// Corner, edge, and interior cells see 2, 3, and 4 standby TXs.
	if got := l.Standbys(0); got != 2 {
		t.Errorf("corner cell standbys = %d", got)
	}
	if got := l.Standbys(1); got != 3 {
		t.Errorf("edge cell standbys = %d", got)
	}
	if got := l.Standbys(5); got != 4 {
		t.Errorf("interior cell standbys = %d", got)
	}
}

func TestNeighborsBoundedAndOrdered(t *testing.T) {
	l := NewLayout(3, 64, 1.0, 2.0)
	for i := 0; i < l.Users; i++ {
		ns := l.Neighbors(i)
		if len(ns) > MaxNeighbors {
			t.Fatalf("user %d has %d neighbors", i, len(ns))
		}
		home := l.Home(i)
		last := -1.0
		for _, j := range ns {
			if j == i {
				t.Fatalf("user %d neighbors itself", i)
			}
			d := l.Home(j).Dist(home)
			if d > NeighborRadius {
				t.Fatalf("user %d neighbor %d at %.2fm", i, j, d)
			}
			if d < last {
				t.Fatalf("user %d neighbors not sorted by distance", i)
			}
			last = d
		}
	}
}

func TestOcclusionWindowsFire(t *testing.T) {
	// A user surrounded at density 1.0 must see some occlusion over a
	// minute; windows must be ordered and within the trace (plus the
	// trailing sampling step).
	l := NewLayout(7, 64, 1.0, 2.0)
	total := 0
	for i := 0; i < l.Users; i++ {
		tr := l.Trace(i, time.Minute)
		tx := l.TXPos(l.CellOf(i))
		var occs []handover.Occluder
		for _, j := range l.Neighbors(i) {
			pair := l.Occluder(j)
			occs = append(occs, pair[0], pair[1])
		}
		wins := OcclusionWindows(tx, tr, occs)
		prev := time.Duration(-1)
		for _, w := range wins {
			if w.Start < prev || w.End <= w.Start {
				t.Fatalf("user %d: malformed window %+v", i, w)
			}
			prev = w.End
			if w.End > tr.Duration()+OcclusionStep {
				t.Fatalf("user %d: window past trace end: %+v", i, w)
			}
		}
		total += len(wins)
	}
	if total == 0 {
		t.Fatal("no occlusion windows anywhere at density 1.0 — the crowd model is inert")
	}
}

func TestRunWorkerDeterminism(t *testing.T) {
	serial, err := Run(testOpts(1))
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.Handovers == 0 && serial.Outages == 0 {
		t.Fatal("no occlusion events fired — determinism test is vacuous")
	}
	if serial.Served == 0 || serial.Slots == 0 {
		t.Fatalf("empty run: %+v", serial.Aggregate)
	}
	for _, workers := range []int{2, 4} {
		got, err := Run(testOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: Result differs from serial", workers)
		}
		if got.Metrics.Exposition() != serial.Metrics.Exposition() {
			t.Errorf("workers=%d: metrics exposition differs from serial", workers)
		}
	}
}

func TestRunResume(t *testing.T) {
	full, err := Run(testOpts(2))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	for _, window := range []int{1, 3, 7} {
		ck := Checkpoint{}
		for !ck.Done {
			opts := testOpts(2)
			opts.Resume = ck
			opts.MaxCells = window
			part, err := Run(opts)
			if err != nil {
				t.Fatalf("window=%d: %v", window, err)
			}
			ck = part.Checkpoint
		}
		if !reflect.DeepEqual(ck, full.Checkpoint) {
			t.Errorf("window=%d: stitched checkpoint differs from uninterrupted run", window)
		}
		if ck.Agg.Metrics.Exposition() != full.Metrics.Exposition() {
			t.Errorf("window=%d: stitched metrics exposition differs", window)
		}
	}
}

func TestRunCancel(t *testing.T) {
	full, err := Run(testOpts(2))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := testOpts(2)
	opts.Context = ctx
	part, err := Run(opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v", err)
	}
	if part.Checkpoint.Done {
		t.Fatal("canceled run claims Done")
	}
	resume := testOpts(2)
	resume.Resume = part.Checkpoint
	rest, err := Run(resume)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(rest.Checkpoint, full.Checkpoint) {
		t.Error("resumed-after-cancel checkpoint differs from uninterrupted run")
	}
}

func TestUsersPerTXCap(t *testing.T) {
	opts := testOpts(2)
	opts.UsersPerTX = 1
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != res.Layout.Cells() || res.Unserved != res.Users-res.Served {
		t.Fatalf("cap=1 served %d / unserved %d over %d cells", res.Served, res.Unserved, res.Layout.Cells())
	}
}

func TestContentionSharesBackhaul(t *testing.T) {
	// Halving the backhaul should at most halve-ish the contended mean
	// goodput and never raise it.
	a := testOpts(2)
	b := testOpts(2)
	b.BackhaulGbps = 50
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rb.MeanGoodputGbps() >= ra.MeanGoodputGbps() {
		t.Errorf("goodput did not drop with backhaul: %.3f vs %.3f",
			rb.MeanGoodputGbps(), ra.MeanGoodputGbps())
	}
}

func TestOptionsValidate(t *testing.T) {
	for _, bad := range []Options{
		{},
		{Users: 10},
		{Users: 10, Density: 0.5, UsersPerTX: -1},
		{Users: 10, Density: 0.5, MaxCells: -1},
		{Users: 10, Density: 0.5, Resume: Checkpoint{NextCell: -1}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	o := Options{Users: 10, Density: 0.5}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.UsersPerTX != 4 || o.TraceLen != time.Minute || o.Pitch != 2.0 ||
		o.BackhaulGbps != 100 || o.LinkGoodputGbps == 0 || o.Registry == nil {
		t.Errorf("defaults wrong: %+v", o)
	}
}
